package search

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dualtopo/internal/eval"
	"dualtopo/internal/spf"
)

// StartKind selects how a portfolio trajectory builds its initial weights.
type StartKind int

const (
	// StartWarm uses the weights passed to Portfolio (typically an STR warm
	// start), exactly like a plain DTRFrom call.
	StartWarm StartKind = iota
	// StartUniform starts from unit weights.
	StartUniform
	// StartInvCap starts from inverse-capacity weights (OSPF InvCap): the
	// fattest links get the smallest weights.
	StartInvCap
	// StartGreedy evaluates the uniform setting once, attributes its cost
	// onto arcs, and starts from weights proportional to that attribution —
	// a guided-greedy construction that begins the search already pushing
	// traffic off the costly arcs.
	StartGreedy
)

func (k StartKind) String() string {
	switch k {
	case StartWarm:
		return "warm"
	case StartUniform:
		return "uniform"
	case StartInvCap:
		return "invcap"
	case StartGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("StartKind(%d)", int(k))
	}
}

// Strategy describes one portfolio trajectory: where it starts, how strongly
// its steps are guided, whether bound-pruning is on, and its seed offset.
type Strategy struct {
	// Name labels the trajectory in results, traces, and metrics.
	Name string
	// Start selects the initial weight construction.
	Start StartKind
	// Guide and Prune override the base Params fields for this trajectory.
	Guide float64
	Prune bool
	// SeedDelta is added to the base seed, decorrelating the trajectory's
	// random stream from its siblings.
	SeedDelta uint64
}

// DefaultPortfolio returns s diverse strategies: a faithful warm-started
// paper search first (so the portfolio is never worse than a plain DTRFrom
// at the same seed), then guided/pruned trajectories from warm,
// inverse-capacity, and greedy starts, cycling with fresh seed offsets.
func DefaultPortfolio(s int) []Strategy {
	base := []Strategy{
		{Name: "warm", Start: StartWarm},
		{Name: "warm-guided", Start: StartWarm, Guide: 0.9, Prune: true},
		{Name: "invcap-guided", Start: StartInvCap, Guide: 0.5, Prune: true},
		{Name: "greedy-guided", Start: StartGreedy, Guide: 0.9, Prune: true},
	}
	out := make([]Strategy, 0, s)
	for i := 0; i < s; i++ {
		st := base[i%len(base)]
		if i >= len(base) {
			st.Name = fmt.Sprintf("%s-%d", st.Name, i/len(base))
		}
		st.SeedDelta = uint64(i) * 1_000_000_007
		out = append(out, st)
	}
	return out
}

// PortfolioParams configures a multi-start portfolio run.
type PortfolioParams struct {
	// Base holds the search parameters every trajectory shares; each
	// Strategy overrides Seed (via SeedDelta), Guide, and Prune. Base.OnEvent
	// is ignored — use PortfolioParams.OnEvent, which carries the trajectory
	// index.
	Base Params
	// Strategies lists the trajectories; see DefaultPortfolio.
	Strategies []Strategy
	// Concurrency bounds how many trajectories run at once; 0 means
	// GOMAXPROCS. Results are bitwise-identical at any setting: trajectories
	// are fully independent and the winner is selected deterministically.
	Concurrency int
	// OnEvent, when non-nil, receives every trajectory's trace events with
	// TraceEvent.Trajectory set. Unlike Params.OnEvent it may be called
	// concurrently (from each running trajectory's coordinating goroutine);
	// TraceWriter serializes internally, custom sinks must lock.
	OnEvent func(TraceEvent)
}

// Validate reports the first invalid field.
func (pp PortfolioParams) Validate() error {
	if len(pp.Strategies) == 0 {
		return fmt.Errorf("search: portfolio needs at least one strategy")
	}
	if pp.Concurrency < 0 {
		return fmt.Errorf("search: portfolio concurrency=%d < 0", pp.Concurrency)
	}
	for i, st := range pp.Strategies {
		p := pp.Base
		p.Guide, p.Prune = st.Guide, st.Prune
		if err := p.Validate(); err != nil {
			return fmt.Errorf("search: portfolio strategy %d (%s): %w", i, st.Name, err)
		}
	}
	return nil
}

// TrajectoryResult is one completed portfolio trajectory.
type TrajectoryResult struct {
	// Strategy is the configuration the trajectory ran.
	Strategy Strategy
	// Result is the trajectory's search outcome.
	Result *DTRResult
}

// PortfolioResult is the outcome of a Portfolio run.
type PortfolioResult struct {
	// Best is the winning trajectory's result: minimal lexicographic
	// objective, ties broken by lowest trajectory index — deterministic at
	// any Concurrency.
	Best *DTRResult
	// BestIndex is the winning trajectory's index into Trajectories.
	BestIndex int
	// Trajectories lists every trajectory's outcome, in strategy order.
	Trajectories []TrajectoryResult
}

// sharedBound is the portfolio's cross-trajectory best-known ΦL, shared
// through an atomic. It is advisory: running trajectories publish every new
// personal best into it (live-visible through the portfolio_best_phi_l
// gauge and to any custom OnEvent sink), but no trajectory's decisions read
// it — consuming it would make one trajectory's path depend on scheduling,
// destroying the bitwise determinism the portfolio guarantees at any
// Concurrency.
type sharedBound struct{ bits atomic.Uint64 }

func (b *sharedBound) init(v float64) { b.bits.Store(math.Float64bits(v)) }

func (b *sharedBound) note(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Portfolio runs every strategy as an independent seeded DTR trajectory on
// a clone of e, at most Concurrency at a time, and returns the
// deterministically selected winner plus all per-trajectory results. wH0
// and wL0 seed the StartWarm trajectories (and are not modified); e itself
// is never routed on — each trajectory owns a full clone, so concurrent
// trajectories share no mutable router or scratch state.
func Portfolio(e *eval.Evaluator, wH0, wL0 spf.Weights, pp PortfolioParams) (*PortfolioResult, error) {
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	g := e.Graph()
	if err := wH0.Validate(g); err != nil {
		return nil, fmt.Errorf("search: portfolio initial WH: %w", err)
	}
	if err := wL0.Validate(g); err != nil {
		return nil, fmt.Errorf("search: portfolio initial WL: %w", err)
	}
	nStrat := len(pp.Strategies)
	conc := pp.Concurrency
	if conc == 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	if conc > nStrat {
		conc = nStrat
	}

	// Clone up-front from the coordinator goroutine: Clone reads e's plans,
	// which must not be mutated concurrently.
	evs := make([]*eval.Evaluator, nStrat)
	for i := range evs {
		evs[i] = e.Clone()
	}
	// Per-trajectory candidate-evaluation workers: unless the caller pinned
	// Workers, split the machine across the concurrent trajectories (the
	// trajectory count, not GOMAXPROCS, is the outer parallelism here).
	workers := pp.Base.Workers
	if workers == 0 {
		if workers = runtime.GOMAXPROCS(0) / conc; workers < 1 {
			workers = 1
		}
	}

	var bound sharedBound
	bound.init(math.Inf(1))
	portfolioMet.bestPhiL.Set(math.Inf(1))

	results := make([]*DTRResult, nStrat)
	errs := make([]error, nStrat)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for i, st := range pp.Strategies {
		wg.Add(1)
		go func(i int, st Strategy) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = runTrajectory(evs[i], wH0, wL0, pp, i, st, workers, &bound)
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &PortfolioResult{Trajectories: make([]TrajectoryResult, nStrat)}
	for i, st := range pp.Strategies {
		res.Trajectories[i] = TrajectoryResult{Strategy: st, Result: results[i]}
		portfolioMet.trajectories.With(st.Name).Inc()
	}
	best := 0
	for i := 1; i < nStrat; i++ {
		if results[i].Best.Less(results[best].Best) {
			best = i
		}
	}
	res.Best, res.BestIndex = results[best], best
	return res, nil
}

// runTrajectory executes one strategy on its own evaluator clone.
func runTrajectory(ev *eval.Evaluator, wH0, wL0 spf.Weights, pp PortfolioParams, idx int, st Strategy, workers int, bound *sharedBound) (*DTRResult, error) {
	p := pp.Base
	p.Seed += st.SeedDelta
	p.Guide, p.Prune = st.Guide, st.Prune
	p.Workers = workers
	p.OnEvent = func(te TraceEvent) {
		te.Trajectory = idx
		bound.note(te.BestPhiL)
		portfolioMet.bestPhiL.SetMin(te.BestPhiL)
		if pp.OnEvent != nil {
			pp.OnEvent(te)
		}
	}

	wH, wL := wH0, wL0
	switch st.Start {
	case StartWarm:
		// keep the caller's weights
	case StartUniform:
		wH = spf.Uniform(ev.Graph().NumEdges())
		wL = wH
	case StartInvCap:
		wH = invCapWeights(ev.Graph().CSR().Capacity, p.WMax)
		wL = wH
	case StartGreedy:
		n := ev.Graph().NumEdges()
		r, err := ev.EvaluateDTR(spf.Uniform(n), spf.Uniform(n))
		if err != nil {
			return nil, err
		}
		var attr eval.Attribution
		ev.Attribute(r, &attr)
		wH = scoreWeights(attr.HScore, p.WMax)
		wL = scoreWeights(attr.LScore, p.WMax)
	default:
		return nil, fmt.Errorf("search: unknown start kind %v", st.Start)
	}
	res, err := DTRFrom(ev, wH, wL, p)
	if err != nil {
		return nil, fmt.Errorf("search: portfolio trajectory %d (%s): %w", idx, st.Name, err)
	}
	bound.note(res.Best.Secondary)
	portfolioMet.bestPhiL.SetMin(res.Best.Secondary)
	return res, nil
}
