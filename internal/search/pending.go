package search

import "dualtopo/internal/graph"

// Worker delta-router bookkeeping shared by the DTR and STR searches.
//
// pending[wk] conservatively lists the arcs on which worker wk's incremental
// router may differ from the incumbent weights: the worker's last-evaluated
// candidate, plus every incumbent move (accept, perturbation, routine
// transition) since. Each delta evaluation passes pending ∪ candidate arcs
// as its changed set, keeping the superset invariant the eval layer's
// Objective*Delta contract requires.

// takePending builds the changed-arc set for one delta evaluation — worker
// wk's pending arcs plus the candidate's own — into mergeBuf[wk], and resets
// pending[wk] to the candidate arcs (where the worker's router will sit
// after the call). The returned slice is valid until the worker's next call.
func takePending(pending, mergeBuf [][]graph.EdgeID, wk int, cand []graph.EdgeID) []graph.EdgeID {
	buf := append(mergeBuf[wk][:0], pending[wk]...)
	buf = append(buf, cand...)
	mergeBuf[wk] = buf
	pending[wk] = append(pending[wk][:0], cand...)
	return buf
}

// notePending records an incumbent move on the given arcs: every worker's
// router is now stale there until its next evaluation.
func notePending(pending [][]graph.EdgeID, arcs []graph.EdgeID) {
	if len(arcs) == 0 {
		return
	}
	for wk := range pending {
		pending[wk] = append(pending[wk], arcs...)
	}
}
