package search

import (
	"fmt"
	"math"

	"dualtopo/internal/cost"
	"dualtopo/internal/resilience"
	"dualtopo/internal/spf"
)

// Failure-aware DTR search support: when Params.Robust carries a failure
// set, every candidate's secondary objective becomes
//
//	ΦL + Alpha·mean_f ΦL(f) + Beta·max_f ΦL(f)
//
// over the fixed surviving states f, each evaluated through the resilience
// sweep engine (disable → delta objective → repair) on the worker's own
// router pair. The primary objective stays nominal: robustness is a
// low-priority concern by the paper's construction (§5's robustness story is
// about how gracefully ΦL degrades). Because every sweep is a pure function
// of (candidate weights, states), robust scores — and therefore the search
// trajectory — are identical at any worker count.

// RobustScore reports the failure-aware metrics of a robust search's
// returned solution.
type RobustScore struct {
	// States counts the surviving failure states every candidate was scored
	// against (disconnecting states are filtered at search start).
	States int `json:"states"`
	// MeanPhiL and WorstPhiL summarize ΦL across the failure states for the
	// returned weights.
	MeanPhiL  float64 `json:"mean_phi_l"`
	WorstPhiL float64 `json:"worst_phi_l"`
	// WorstState labels the failure state attaining WorstPhiL.
	WorstState string `json:"worst_state"`
	// Composite is ΦL + Alpha·mean + Beta·worst — the secondary objective
	// the robust search minimized.
	Composite float64 `json:"composite"`
}

// robust reports whether failure-aware scoring is active.
func (s *dtrSearch) robust() bool { return len(s.rStates) > 0 }

// initRobust builds one sweeper per worker and filters the configured
// failure set down to states that keep every demand connected. Reachability
// under a failure depends only on the surviving arcs — never on the weights
// — so the filter holds for every candidate the search will visit.
func (s *dtrSearch) initRobust(wH0, wL0 spf.Weights) error {
	s.sweep = make([]*resilience.Sweeper, len(s.pool))
	for i, e := range s.pool {
		// Pool sweepers run concurrently during candidate evaluation, so
		// each must route sequentially (RouteWorkers 0 would mean auto).
		s.sweep[i] = resilience.NewSweeper(e, resilience.Options{RouteWorkers: 1})
	}
	res, err := s.sweep[0].SweepDTR(wH0, wL0, s.p.Robust.States)
	if err != nil {
		return err
	}
	for i, st := range s.p.Robust.States {
		if !math.IsNaN(res.PhiL[i]) {
			s.rStates = append(s.rStates, st)
		}
	}
	if len(s.rStates) == 0 {
		return fmt.Errorf("search: every robust failure state disconnects the network")
	}
	return nil
}

// robustStats sweeps (wH, wL) over the filtered states on the given worker's
// engines and reduces to (mean, worst, worst index).
func (s *dtrSearch) robustStats(worker int, wH, wL spf.Weights) (mean, worst float64, worstIdx int, err error) {
	res, err := s.sweep[worker].SweepDTR(wH, wL, s.rStates)
	if err != nil {
		return 0, 0, 0, err
	}
	if res.Disconnecting > 0 {
		return 0, 0, 0, fmt.Errorf("search: %d robust failure states disconnected mid-search", res.Disconnecting)
	}
	sum := 0.0
	for i, phi := range res.PhiL {
		sum += phi
		if phi > worst {
			worst = phi
			worstIdx = i
		}
	}
	return sum / float64(len(res.PhiL)), worst, worstIdx, nil
}

// robustTerm is the additive failure penalty of one candidate routing.
func (s *dtrSearch) robustTerm(worker int, wH, wL spf.Weights) (float64, error) {
	mean, worst, _, err := s.robustStats(worker, wH, wL)
	if err != nil {
		return 0, err
	}
	return s.p.Robust.Alpha*mean + s.p.Robust.Beta*worst, nil
}

// composite folds a robust penalty into a nominal objective for candidate
// and incumbent comparisons. Without robust scoring it is the identity.
func (s *dtrSearch) composite(lex cost.Lex, rob float64) cost.Lex {
	if !s.robust() {
		return lex
	}
	return cost.Lex{Primary: lex.Primary, Secondary: lex.Secondary + rob}
}

// curRobIfOn returns the incumbent's robust penalty (0 when scoring is off;
// curRob already is 0 then, but keep the off-path explicit).
func (s *dtrSearch) curRobIfOn() float64 {
	if !s.robust() {
		return 0
	}
	return s.curRob
}

// robAdd returns candidate i's robust penalty (0 when scoring is off).
func (s *dtrSearch) robAdd(i int) float64 {
	if !s.robust() {
		return 0
	}
	return s.robustAdd[i]
}

// prepRobustAdd sizes the per-candidate penalty scratch.
func (s *dtrSearch) prepRobustAdd(n int) {
	if !s.robust() {
		return
	}
	if cap(s.robustAdd) < n {
		s.robustAdd = make([]float64, n)
	}
	s.robustAdd = s.robustAdd[:n]
}

// finalRobust scores the best-found weights for reporting.
func (s *dtrSearch) finalRobust(nominalPhiL float64) (*RobustScore, error) {
	mean, worst, worstIdx, err := s.robustStats(0, s.bestWH, s.bestWL)
	if err != nil {
		return nil, err
	}
	return &RobustScore{
		States:     len(s.rStates),
		MeanPhiL:   mean,
		WorstPhiL:  worst,
		WorstState: s.rStates[worstIdx].Label,
		Composite:  nominalPhiL + s.p.Robust.Alpha*mean + s.p.Robust.Beta*worst,
	}, nil
}
