package search

import (
	"strings"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/obs"
	"dualtopo/internal/spf"
)

// TestGuidedCandidatesAreLegalMoves pins the guided generator to Algorithm
// 2's move set: a guided step only swaps in the attribution ordering — every
// candidate must still be neighborOf(w, up, down) for a distinct (up, down)
// pair produced by the paper's rank sampler over that ordering — one weight
// raised by at most Step (clamped to WMax), one lowered by at most Step
// (clamped to 1), everything else untouched.
func TestGuidedCandidatesAreLegalMoves(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			e := randomEvaluator(t, kind, 19)
			p := tinyParams()
			p.Guide = 1
			s, err := newDTRSearch(e, spf.Uniform(e.Graph().NumEdges()), spf.Uniform(e.Graph().NumEdges()), p)
			if err != nil {
				t.Fatal(err)
			}
			n := e.Graph().NumEdges()
			m := p.Neighbors
			for trial := 0; trial < 25; trial++ {
				s.ensureAttr()
				s.sortLinksGuided(s.attr.HScore)
				// The guided ordering must rank by decreasing score with
				// arc-ID tie-breaks — fully deterministic.
				for i := 1; i < n; i++ {
					a, b := s.order[i-1], s.order[i]
					if s.attr.HScore[a] < s.attr.HScore[b] ||
						(s.attr.HScore[a] == s.attr.HScore[b] && a > b) {
						t.Fatalf("guided order not (score desc, id asc) at %d: %v/%v", i, a, b)
					}
				}
				cands := s.buildNeighbors(s.wH, true)
				if len(cands) > m {
					t.Fatalf("guided step built %d candidates, sampler pairs at most %d", len(cands), m)
				}
				if len(s.candArcs) != len(cands) {
					t.Fatalf("candArcs misaligned: %d vs %d", len(s.candArcs), len(cands))
				}
				for ci, cw := range cands {
					up, down := s.candArcs[ci][0], s.candArcs[ci][1]
					if up == down {
						t.Fatalf("candidate %d raises and lowers the same arc %d", ci, up)
					}
					want, changed := neighborOf(s.wH, up, down, p.Step, p.WMax)
					if !changed {
						t.Fatalf("candidate %d recorded for a no-op move", ci)
					}
					for a := 0; a < n; a++ {
						if cw[a] != want[a] {
							t.Fatalf("candidate %d differs from the legal move at arc %d: %d vs %d", ci, a, cw[a], want[a])
						}
						if cw[a] < 1 || cw[a] > p.WMax {
							t.Fatalf("candidate %d weight %d outside [1,%d]", ci, cw[a], p.WMax)
						}
					}
				}
				// Move the incumbent so later trials exercise fresh
				// attributions and orderings.
				s.noteHChange(s.perturb(s.wH, 0.2))
				if err := s.refreshFull(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestGuidedSearchRunsAndVerifies drives full guided searches with
// VerifyDelta armed: every accepted guided move's incremental objective must
// equal its full re-evaluation, and the trajectory must be deterministic
// across worker counts.
func TestGuidedSearchRunsAndVerifies(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			p := tinyParams()
			p.Guide = 0.8
			p.Prune = true
			p.VerifyDelta = true
			one, err := DTR(randomEvaluator(t, kind, 23), p)
			if err != nil {
				t.Fatal(err)
			}
			p4 := p
			p4.Workers = 4
			four, err := DTR(randomEvaluator(t, kind, 23), p4)
			if err != nil {
				t.Fatal(err)
			}
			if one.Best != four.Best {
				t.Fatalf("guided best diverges across workers: %+v vs %+v", one.Best, four.Best)
			}
			for i := range one.WH {
				if one.WH[i] != four.WH[i] || one.WL[i] != four.WL[i] {
					t.Fatalf("guided weights diverge across workers at arc %d", i)
				}
			}
		})
	}
}

// TestSearchMetricsFamilies pins the new candidate-pipeline and portfolio
// metric families into the default registry's Prometheus exposition, so
// the /metrics surface (and its golden TYPE headers) cannot silently lose
// them.
func TestSearchMetricsFamilies(t *testing.T) {
	e := randomEvaluator(t, eval.LoadBased, 29)
	p := tinyParams()
	p.N, p.K = 40, 30
	p.Guide = 0.9
	p.Prune = true
	if _, err := DTR(e, p); err != nil {
		t.Fatal(err)
	}
	n := e.Graph().NumEdges()
	pp := PortfolioParams{Base: p, Strategies: DefaultPortfolio(2), Concurrency: 1}
	if _, err := Portfolio(e, spf.Uniform(n), spf.Uniform(n), pp); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE search_candidates_total counter",
		`search_candidates_total{outcome="generated"}`,
		`search_candidates_total{outcome="evaluated"}`,
		`search_candidates_total{outcome="pruned"}`,
		"# TYPE search_guided_steps_total counter",
		"# TYPE search_prune_rate gauge",
		"# TYPE portfolio_trajectories_total counter",
		`portfolio_trajectories_total{strategy="warm"}`,
		"# TYPE portfolio_best_phi_l gauge",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
