package search

import (
	"math"
	"math/rand/v2"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
	"dualtopo/internal/topo"
	"dualtopo/internal/traffic"
)

// tinyParams returns a small but real search budget for unit tests.
func tinyParams() Params {
	p := Defaults()
	p.N = 150
	p.K = 150
	p.M = 40
	p.Neighbors = 4
	p.Seed = 7
	p.Workers = 1
	return p
}

func tinySTRParams() STRParams {
	p := STRDefaults()
	p.Iterations = 300
	p.Candidates = 6
	p.M = 60
	p.Seed = 7
	p.Workers = 1
	return p
}

// triangleEvaluator builds the §3.3.1 instance.
func triangleEvaluator(t *testing.T) *eval.Evaluator {
	t.Helper()
	g := graph.New(3)
	g.AddLink(0, 1, 1, 1)
	g.AddLink(1, 2, 1, 1)
	g.AddLink(0, 2, 1, 1)
	th := traffic.NewMatrix(3)
	th.Set(0, 2, 1.0/3)
	tl := traffic.NewMatrix(3)
	tl.Set(0, 2, 2.0/3)
	e, err := eval.New(g, th, tl, eval.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// randomEvaluator builds a small random instance for integration tests.
func randomEvaluator(t *testing.T, kind eval.Kind, seed uint64) *eval.Evaluator {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	g, err := topo.Random(12, 30, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo.AssignUniformDelays(g, topo.MinSynthDelayMs, topo.MaxSynthDelayMs, rng)
	tl := traffic.Gravity(12, rng)
	th, err := traffic.RandomHighPriority(12, 0.15, 0.30, tl.Total(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Scale to a moderately loaded network where DTR has room to help.
	total := tl.Total() + th.Total()
	target := 0.65 * 500 * float64(g.NumEdges()) / 4.0 // rough: avg path ~4 hops
	tl.Scale(target / total)
	th.Scale(target / total)
	opts := eval.DefaultOptions()
	opts.Kind = kind
	e, err := eval.New(g, th, tl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParamsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("Defaults invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.N = -1 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.Neighbors = 0 },
		func(p *Params) { p.G1 = 1.5 },
		func(p *Params) { p.Tau = -1 },
		func(p *Params) { p.WMax = 1 },
		func(p *Params) { p.Step = 0 },
		func(p *Params) { p.Guide = -0.1 },
		func(p *Params) { p.Guide = 1.01 },
		func(p *Params) { p.Workers = -2 },
	}
	for i, mutate := range bad {
		p := Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSTRParamsValidate(t *testing.T) {
	if err := STRDefaults().Validate(); err != nil {
		t.Fatalf("STRDefaults invalid: %v", err)
	}
	bad := []func(*STRParams){
		func(p *STRParams) { p.Iterations = -1 },
		func(p *STRParams) { p.Candidates = 0 },
		func(p *STRParams) { p.M = 0 },
		func(p *STRParams) { p.Perturb = -0.1 },
		func(p *STRParams) { p.WMax = 0 },
		func(p *STRParams) { p.Epsilons = []float64{-0.05} },
		func(p *STRParams) { p.Workers = -1 },
	}
	for i, mutate := range bad {
		p := STRDefaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRankSamplerRange(t *testing.T) {
	s := newRankSampler(20, 1.5)
	r := newRNG(1)
	for i := 0; i < 2000; i++ {
		k := s.sample(r.Rand)
		if k < 1 || k > 20 {
			t.Fatalf("sample %d outside [1,20]", k)
		}
	}
}

func TestRankSamplerHeavyTail(t *testing.T) {
	// τ = 1.5 prefers low ranks; τ = 0 is uniform.
	const n = 50
	count := func(tau float64) int {
		s := newRankSampler(n, tau)
		r := newRNG(2)
		ones := 0
		for i := 0; i < 5000; i++ {
			if s.sample(r.Rand) == 1 {
				ones++
			}
		}
		return ones
	}
	heavy := count(1.5)
	uniform := count(0)
	if heavy < 3*uniform {
		t.Fatalf("rank-1 frequency: tau=1.5 %d vs tau=0 %d; want strong preference", heavy, uniform)
	}
	// Uniform should put roughly 1/n mass on rank 1.
	if uniform < 5000/n/3 || uniform > 5000/n*3 {
		t.Fatalf("tau=0 rank-1 frequency %d not near uniform %d", uniform, 5000/n)
	}
}

func TestRankSamplerDegenerate(t *testing.T) {
	s := newRankSampler(1, 1.5)
	r := newRNG(3)
	for i := 0; i < 10; i++ {
		if k := s.sample(r.Rand); k != 1 {
			t.Fatalf("max=1 sampler returned %d", k)
		}
	}
	if s2 := newRankSampler(0, 1.0); s2.max != 1 {
		t.Fatalf("max=0 clamps to %d, want 1", s2.max)
	}
}

func TestNeighborOf(t *testing.T) {
	w := spf.Weights{5, 30, 1, 10}
	nw, changed := neighborOf(w, 0, 2, 1, 30)
	if !changed || nw[0] != 6 || nw[2] != 1 {
		t.Fatalf("basic move: %v changed=%v (down already at floor)", nw, changed)
	}
	// Saturated both ends: no change.
	w2 := spf.Weights{30, 1}
	if _, changed := neighborOf(w2, 0, 1, 1, 30); changed {
		t.Fatal("saturated move reported change")
	}
	// Step overshoot clamps.
	w3 := spf.Weights{29, 2}
	nw3, changed := neighborOf(w3, 0, 1, 5, 30)
	if !changed || nw3[0] != 30 || nw3[1] != 1 {
		t.Fatalf("clamped move: %v changed=%v", nw3, changed)
	}
	// Original untouched.
	if w[0] != 5 {
		t.Fatal("neighborOf mutated input")
	}
}

func TestDTRTriangleFindsJointOptimum(t *testing.T) {
	e := triangleEvaluator(t)
	res, err := DTR(e, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	// Lexicographic optimum: H direct (ΦH = 1/3), L split over both paths
	// (ΦL = 11/9). See eval tests for the enumeration.
	if math.Abs(res.Best.Primary-1.0/3) > 1e-9 {
		t.Errorf("PhiH = %v, want 1/3", res.Best.Primary)
	}
	if math.Abs(res.Best.Secondary-11.0/9) > 1e-9 {
		t.Errorf("PhiL = %v, want 11/9 (joint optimum)", res.Best.Secondary)
	}
	if res.Evaluations <= 0 {
		t.Error("no evaluations recorded")
	}
}

func TestSTRTriangleFindsLexOptimum(t *testing.T) {
	e := triangleEvaluator(t)
	res, err := STR(e, tinySTRParams())
	if err != nil {
		t.Fatal(err)
	}
	// STR must keep both classes on the direct link: ⟨1/3, 64/9⟩.
	if math.Abs(res.Best.Primary-1.0/3) > 1e-9 {
		t.Errorf("PhiH = %v, want 1/3", res.Best.Primary)
	}
	if math.Abs(res.Best.Secondary-64.0/9) > 1e-9 {
		t.Errorf("PhiL = %v, want 64/9", res.Best.Secondary)
	}
}

func TestDTRNeverWorseThanInitial(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		e := randomEvaluator(t, kind, 11)
		n := e.Graph().NumEdges()
		init, err := e.EvaluateDTR(spf.Uniform(n), spf.Uniform(n))
		if err != nil {
			t.Fatal(err)
		}
		p := tinyParams()
		p.N, p.K = 60, 40
		res, err := DTR(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if init.Objective().Less(res.Best) {
			t.Errorf("kind %v: search worsened the initial solution: %+v -> %+v",
				kind, init.Objective(), res.Best)
		}
	}
}

func TestSTRNeverWorseThanInitial(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		e := randomEvaluator(t, kind, 12)
		init, err := e.EvaluateSTR(spf.Uniform(e.Graph().NumEdges()))
		if err != nil {
			t.Fatal(err)
		}
		p := tinySTRParams()
		p.Iterations = 120
		res, err := STR(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if init.Objective().Less(res.Best) {
			t.Errorf("kind %v: search worsened the initial solution", kind)
		}
	}
}

func TestDTRBeatsSTROnLowPriority(t *testing.T) {
	// The paper's headline: comparable ΦH, (much) lower ΦL under DTR. With
	// small budgets we only assert the direction, on a fixed seed.
	e := randomEvaluator(t, eval.LoadBased, 13)
	pd := tinyParams()
	pd.N, pd.K = 250, 200
	dtr, err := DTR(e, pd)
	if err != nil {
		t.Fatal(err)
	}
	ps := tinySTRParams()
	ps.Iterations = 500
	str, err := STR(e, ps)
	if err != nil {
		t.Fatal(err)
	}
	if dtr.Result.PhiL > str.Result.PhiL*1.02 {
		t.Errorf("DTR PhiL %.4g worse than STR PhiL %.4g", dtr.Result.PhiL, str.Result.PhiL)
	}
	// High-priority performance comparable (RH ≈ 1 in the paper).
	if dtr.Result.PhiH > str.Result.PhiH*1.25 {
		t.Errorf("DTR PhiH %.4g much worse than STR PhiH %.4g", dtr.Result.PhiH, str.Result.PhiH)
	}
}

func TestDTRDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *DTRResult {
		e := randomEvaluator(t, eval.LoadBased, 14)
		p := tinyParams()
		p.N, p.K = 80, 60
		p.Workers = workers
		res, err := DTR(e, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(1), run(2)
	if a.Best != b.Best {
		t.Fatalf("same seed, different results: %+v vs %+v", a.Best, b.Best)
	}
	for i := range a.WH {
		if a.WH[i] != b.WH[i] || a.WL[i] != b.WL[i] {
			t.Fatalf("same seed, different weights at arc %d", i)
		}
	}
	if a.Best != c.Best {
		t.Fatalf("worker count changed result: %+v vs %+v", a.Best, c.Best)
	}
}

func TestSTRDeterministic(t *testing.T) {
	run := func(workers int) *STRResult {
		e := randomEvaluator(t, eval.LoadBased, 15)
		p := tinySTRParams()
		p.Iterations = 150
		p.Workers = workers
		res, err := STR(e, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(1), run(2)
	if a.Best != b.Best || a.Best != c.Best {
		t.Fatalf("nondeterministic STR: %+v / %+v / %+v", a.Best, b.Best, c.Best)
	}
}

func TestSTRRelaxedRecords(t *testing.T) {
	e := randomEvaluator(t, eval.LoadBased, 16)
	p := tinySTRParams()
	p.Iterations = 300
	p.Epsilons = []float64{0.05, 0.30}
	res, err := STR(e, p)
	if err != nil {
		t.Fatal(err)
	}
	r5, ok5 := res.Relaxed[0.05]
	r30, ok30 := res.Relaxed[0.30]
	if !ok5 || !ok30 || !r5.Found || !r30.Found {
		t.Fatalf("missing relaxed records: %+v", res.Relaxed)
	}
	// The strict best is itself a feasible relaxed solution, so relaxed ΦL
	// can only be equal or lower; and a looser ε can only help further.
	if r5.PhiL > res.Result.PhiL+1e-9 {
		t.Errorf("relaxed(5%%) PhiL %v worse than strict %v", r5.PhiL, res.Result.PhiL)
	}
	if r30.PhiL > r5.PhiL+1e-9 {
		t.Errorf("relaxed(30%%) PhiL %v worse than relaxed(5%%) %v", r30.PhiL, r5.PhiL)
	}
	if len(r5.W) != e.Graph().NumEdges() {
		t.Errorf("relaxed record missing weights")
	}
}

func TestDTRInputValidation(t *testing.T) {
	e := triangleEvaluator(t)
	p := tinyParams()
	p.Neighbors = 100 // exceeds arc count
	if _, err := DTR(e, p); err == nil {
		t.Error("oversized neighborhood accepted")
	}
	p = tinyParams()
	if _, err := DTRFrom(e, spf.Uniform(2), spf.Uniform(6), p); err == nil {
		t.Error("short WH accepted")
	}
	bad := spf.Uniform(6)
	bad[0] = 0
	if _, err := DTRFrom(e, spf.Uniform(6), bad, p); err == nil {
		t.Error("zero weight in WL accepted")
	}
}

func TestSTRInputValidation(t *testing.T) {
	e := triangleEvaluator(t)
	if _, err := STRFrom(e, spf.Uniform(3), tinySTRParams()); err == nil {
		t.Error("short weights accepted")
	}
	p := tinySTRParams()
	p.Candidates = 0
	if _, err := STR(e, p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDTRZeroBudgetReturnsInitial(t *testing.T) {
	e := triangleEvaluator(t)
	p := tinyParams()
	p.N, p.K = 0, 0
	res, err := DTR(e, p)
	if err != nil {
		t.Fatal(err)
	}
	// Unit weights: both classes direct; the known STR values.
	if math.Abs(res.Best.Primary-1.0/3) > 1e-9 || math.Abs(res.Best.Secondary-64.0/9) > 1e-9 {
		t.Fatalf("zero-budget result = %+v, want initial ⟨1/3, 64/9⟩", res.Best)
	}
}

func TestDTRSLAInstanceRuns(t *testing.T) {
	e := randomEvaluator(t, eval.SLABased, 17)
	p := tinyParams()
	p.N, p.K = 60, 40
	res, err := DTR(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.LinkDelay == nil {
		t.Fatal("SLA run missing link delays")
	}
	if res.Best.Primary < 0 {
		t.Fatalf("negative Lambda %v", res.Best.Primary)
	}
}
