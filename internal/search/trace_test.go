package search

import (
	"bytes"
	"testing"

	"dualtopo/internal/eval"
)

// traceDTR runs a seeded DTR search with a JSONL tracer attached and
// returns the trace bytes.
func traceDTR(t *testing.T, p Params, kind eval.Kind) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	p.OnEvent = tw.OnEvent
	if _, err := DTR(randomEvaluator(t, kind, 23), p); err != nil {
		t.Fatal(err)
	}
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossWorkers pins the OnEvent contract: the
// trajectory trace is byte-identical at any Workers or RouteWorkers setting,
// so traces diff cleanly across machines and parallelism configurations.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			base := tinyParams()
			ref := traceDTR(t, base, kind)
			if len(ref) == 0 {
				t.Fatal("trace is empty")
			}
			for _, variant := range []struct {
				name string
				mod  func(*Params)
			}{
				{"workers=4", func(p *Params) { p.Workers = 4 }},
				{"routeworkers=4", func(p *Params) { p.RouteWorkers = 4 }},
				{"fulleval", func(p *Params) { p.FullEval = true }},
			} {
				p := base
				variant.mod(&p)
				got := traceDTR(t, p, kind)
				if variant.name == "fulleval" {
					// Full evaluation shifts the delta/full counters but must
					// keep the same number of events (same trajectory length).
					if bytes.Count(got, []byte("\n")) != bytes.Count(ref, []byte("\n")) {
						t.Fatalf("%s: %d events, want %d", variant.name,
							bytes.Count(got, []byte("\n")), bytes.Count(ref, []byte("\n")))
					}
					continue
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("%s: trace differs from sequential reference", variant.name)
				}
			}
		})
	}
}

// TestTraceEventShape sanity-checks the emitted stream: routines appear in
// order, iteration counters restart per routine, and the cumulative
// evaluation counts never decrease.
func TestTraceEventShape(t *testing.T) {
	var events []TraceEvent
	p := tinyParams()
	p.OnEvent = func(ev TraceEvent) { events = append(events, ev) }
	if _, err := DTR(randomEvaluator(t, eval.LoadBased, 23), p); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	lastRoutine := 0
	var lastDelta, lastFull int64
	for i, ev := range events {
		if ev.Routine < lastRoutine {
			t.Fatalf("event %d: routine %d after routine %d", i, ev.Routine, lastRoutine)
		}
		lastRoutine = ev.Routine
		if ev.DeltaEvals < lastDelta || ev.FullEvals < lastFull {
			t.Fatalf("event %d: evaluation counters went backwards (%d/%d after %d/%d)",
				i, ev.DeltaEvals, ev.FullEvals, lastDelta, lastFull)
		}
		lastDelta, lastFull = ev.DeltaEvals, ev.FullEvals
		switch ev.Kind {
		case "findH", "findL", "refine", "perturb":
		default:
			t.Fatalf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	if lastDelta == 0 {
		t.Fatal("delta evaluation counter never moved")
	}
}
