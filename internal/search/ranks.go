package search

import (
	"math"
	"math/rand/v2"
	"sort"
)

// rankSampler draws ranks k ∈ [1, max] from the truncated heavy-tail
// distribution P(k) ∝ k^−τ of Algorithm 2 [20]. τ→0 selects ranks uniformly
// (cost-independent link choice); large τ concentrates on the extreme ranks.
type rankSampler struct {
	max int
	cum []float64 // cumulative probabilities, cum[max-1] == 1
}

// newRankSampler precomputes the CDF for ranks 1..max.
func newRankSampler(max int, tau float64) *rankSampler {
	if max < 1 {
		max = 1
	}
	cum := make([]float64, max)
	total := 0.0
	for k := 1; k <= max; k++ {
		total += math.Pow(float64(k), -tau)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[max-1] = 1 // guard against rounding
	return &rankSampler{max: max, cum: cum}
}

// sample draws one rank in [1, max].
func (s *rankSampler) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(s.cum, u) + 1
}
