package search

import (
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/spf"
)

// portfolioFixture returns a fresh evaluator plus uniform start weights.
func portfolioFixture(t *testing.T, seed uint64) (*eval.Evaluator, spf.Weights) {
	t.Helper()
	e := randomEvaluator(t, eval.LoadBased, seed)
	return e, spf.Uniform(e.Graph().NumEdges())
}

// TestPortfolioDeterministicAcrossConcurrency is the acceptance contract:
// the portfolio's output — winner, winner index, every trajectory's weights
// and objective, and every trajectory's trace stream — must be
// bitwise-identical at 1 worker, 4 workers, and GOMAXPROCS workers. The
// shared bound is advisory-only and per-trajectory state is fully isolated,
// so scheduling must not be observable in any output.
func TestPortfolioDeterministicAcrossConcurrency(t *testing.T) {
	concs := []int{1, 4, runtime.GOMAXPROCS(0)}
	type capture struct {
		res    *PortfolioResult
		traces map[int][]TraceEvent
	}
	runs := make([]capture, 0, len(concs))
	for _, conc := range concs {
		e, w0 := portfolioFixture(t, 43)
		p := tinyParams()
		p.N, p.K, p.M = 80, 60, 20
		// Pin per-trajectory candidate workers so the inner parallelism does
		// not vary with Concurrency (it is deterministic either way, but
		// pinning isolates what this test is about).
		p.Workers = 2
		var mu sync.Mutex
		traces := map[int][]TraceEvent{}
		pp := PortfolioParams{
			Base:        p,
			Strategies:  DefaultPortfolio(5),
			Concurrency: conc,
			OnEvent: func(te TraceEvent) {
				mu.Lock()
				traces[te.Trajectory] = append(traces[te.Trajectory], te)
				mu.Unlock()
			},
		}
		res, err := Portfolio(e, w0, w0, pp)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		runs = append(runs, capture{res: res, traces: traces})
	}

	ref := runs[0]
	for ri := 1; ri < len(runs); ri++ {
		got := runs[ri]
		if got.res.BestIndex != ref.res.BestIndex || got.res.Best.Best != ref.res.Best.Best {
			t.Fatalf("concurrency %d: winner diverged: idx %d %+v vs idx %d %+v",
				concs[ri], got.res.BestIndex, got.res.Best.Best, ref.res.BestIndex, ref.res.Best.Best)
		}
		for ti := range ref.res.Trajectories {
			a, b := ref.res.Trajectories[ti].Result, got.res.Trajectories[ti].Result
			if a.Best != b.Best || a.Evaluations != b.Evaluations || a.Pruned != b.Pruned {
				t.Fatalf("concurrency %d: trajectory %d diverged: %+v/%d/%d vs %+v/%d/%d",
					concs[ri], ti, b.Best, b.Evaluations, b.Pruned, a.Best, a.Evaluations, a.Pruned)
			}
			for i := range a.WH {
				if a.WH[i] != b.WH[i] || a.WL[i] != b.WL[i] {
					t.Fatalf("concurrency %d: trajectory %d weights diverged at arc %d", concs[ri], ti, i)
				}
			}
			if !reflect.DeepEqual(ref.traces[ti], got.traces[ti]) {
				t.Fatalf("concurrency %d: trajectory %d trace stream diverged (%d vs %d events)",
					concs[ri], ti, len(got.traces[ti]), len(ref.traces[ti]))
			}
		}
	}

	// Every event must carry its trajectory index, and every trajectory must
	// have emitted at least one event.
	for ti, evs := range ref.traces {
		if len(evs) == 0 {
			t.Fatalf("trajectory %d emitted no trace events", ti)
		}
		for _, te := range evs {
			if te.Trajectory != ti {
				t.Fatalf("event filed under trajectory %d carries index %d", ti, te.Trajectory)
			}
		}
	}
	if len(ref.traces) != len(ref.res.Trajectories) {
		t.Fatalf("trace streams for %d trajectories, want %d", len(ref.traces), len(ref.res.Trajectories))
	}
}

// TestPortfolioSelectsDeterministicWinner: the winner is the minimum by
// lexicographic objective with ties broken by the lowest trajectory index.
func TestPortfolioSelectsDeterministicWinner(t *testing.T) {
	e, w0 := portfolioFixture(t, 47)
	p := tinyParams()
	p.N, p.K = 60, 40
	pp := PortfolioParams{Base: p, Strategies: DefaultPortfolio(4), Concurrency: 2}
	res, err := Portfolio(e, w0, w0, pp)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trajectories {
		if tr.Result.Best.Less(res.Best.Best) {
			t.Fatalf("trajectory %d (%s) beats the declared winner: %+v vs %+v",
				i, tr.Strategy.Name, tr.Result.Best, res.Best.Best)
		}
		if i < res.BestIndex && tr.Result.Best == res.Best.Best {
			t.Fatalf("tie at trajectory %d not broken by lowest index (winner %d)", i, res.BestIndex)
		}
	}
	if res.Trajectories[res.BestIndex].Result != res.Best {
		t.Fatal("BestIndex does not point at Best")
	}
}

// TestPortfolioNeverWorseThanPlainSearch: DefaultPortfolio's first strategy
// is a faithful warm-started paper search at the base seed, so the portfolio
// winner can never be worse than a plain DTRFrom with the same inputs.
func TestPortfolioNeverWorseThanPlainSearch(t *testing.T) {
	e, w0 := portfolioFixture(t, 53)
	p := tinyParams()
	p.N, p.K = 80, 60
	plain, err := DTRFrom(e.Clone(), w0, w0, p)
	if err != nil {
		t.Fatal(err)
	}
	pp := PortfolioParams{Base: p, Strategies: DefaultPortfolio(4), Concurrency: 2}
	res, err := Portfolio(e, w0, w0, pp)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.Less(res.Best.Best) {
		t.Fatalf("portfolio (%+v) worse than plain search (%+v)", res.Best.Best, plain.Best)
	}
	if warm := res.Trajectories[0].Result; warm.Best != plain.Best {
		t.Fatalf("warm trajectory (%+v) does not reproduce the plain search (%+v)", warm.Best, plain.Best)
	}
}

// TestPortfolioValidation rejects malformed configurations before any work.
func TestPortfolioValidation(t *testing.T) {
	e, w0 := portfolioFixture(t, 59)
	p := tinyParams()
	bad := []PortfolioParams{
		{Base: p}, // no strategies
		{Base: p, Strategies: DefaultPortfolio(2), Concurrency: -1}, // negative concurrency
		{Base: p, Strategies: []Strategy{{Name: "x", Guide: 1.5}}},  // invalid per-strategy guide
	}
	for i, pp := range bad {
		if _, err := Portfolio(e, w0, w0, pp); err == nil {
			t.Errorf("case %d: invalid portfolio params accepted", i)
		}
	}
	short := spf.Weights{1}
	if _, err := Portfolio(e, short, w0, PortfolioParams{Base: p, Strategies: DefaultPortfolio(1)}); err == nil {
		t.Error("mis-sized warm-start weights accepted")
	}
}

// TestDefaultPortfolioShape: distinct names, strategy 0 faithful (warm start,
// no guidance, no pruning, zero seed delta), the rest decorrelated.
func TestDefaultPortfolioShape(t *testing.T) {
	sts := DefaultPortfolio(9)
	if len(sts) != 9 {
		t.Fatalf("got %d strategies, want 9", len(sts))
	}
	if s0 := sts[0]; s0.Start != StartWarm || s0.Guide != 0 || s0.Prune || s0.SeedDelta != 0 {
		t.Fatalf("strategy 0 is not the faithful paper search: %+v", s0)
	}
	names := make([]string, len(sts))
	deltas := map[uint64]bool{}
	for i, st := range sts {
		names[i] = st.Name
		if deltas[st.SeedDelta] {
			t.Fatalf("duplicate seed delta %d at strategy %d", st.SeedDelta, i)
		}
		deltas[st.SeedDelta] = true
	}
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Fatalf("duplicate strategy name %q", names[i])
		}
	}
}
