package search

import (
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

// Routing-invariance bound: a candidate whose changed arcs provably leave
// every shortest-path DAG of the class being re-routed intact routes — and
// therefore scores — bitwise-identically to the incumbent. The search only
// accepts strict improvements, so such a candidate can never be selected and
// its evaluation is pure waste.
//
// The per-arc test against the incumbent's destination trees is O(1): for an
// arc a = (u, v) with incumbent weight w and candidate weight w', and tree
// distances du = Dist[u], dv = Dist[v] (toward one destination), the arc can
// influence that tree only if
//
//	du == w + dv            (a is on the ECMP DAG and its weight moves), or
//	w' < w && du >= w' + dv (the decrease creates a path at least as good).
//
// If neither holds for any (changed arc, destination) pair, an induction
// over the changed arcs shows all distances — and hence every DAG — are
// unchanged: an increase on a non-tight arc keeps it non-tight, and a
// decrease that stays strictly above du - dv never becomes competitive, so
// no shortest distance can move and no DAG membership can flip. Identical
// DAGs mean identical loads, identical per-arc costs summed in the same
// order, and an objective bitwise-equal to the incumbent's (pinned by
// TestPruneBoundSoundness).
//
// The bound is only consulted while the incumbent's plan trees are anchored
// at the incumbent weights — which newDTRSearch guarantees for s.e in both
// delta and full-evaluation mode — and never under Robust scoring, where
// failure states re-route under candidate weights and intact-invariance
// says nothing about the sweep.

// pruneOn reports whether the routing-invariance prune is active.
func (s *dtrSearch) pruneOn() bool { return s.p.Prune && !s.robust() }

// arcsInvariant reports whether changing w to cw on the given arcs provably
// leaves every destination tree of plan intact.
func arcsInvariant(plan *spf.Plan, csr *graph.CSR, w, cw spf.Weights, arcs []graph.EdgeID) bool {
	dests := plan.Destinations()
	for _, a := range arcs {
		oldW, newW := int64(w[a]), int64(cw[a])
		if oldW == newW {
			continue
		}
		u, v := csr.From[a], csr.To[a]
		for _, dest := range dests {
			t := plan.Tree(dest)
			dv := int64(t.Dist[v])
			if dv == spf.Unreachable {
				continue // the arc leads nowhere useful for this destination
			}
			// Widen to int64: Disabled weights exceed any finite int32
			// distance, so the sums below must not wrap.
			du := int64(t.Dist[u])
			if du == oldW+dv {
				return false // on the DAG; its weight moves
			}
			if newW < oldW && du >= newW+dv {
				return false // decrease creates a competitive path
			}
		}
	}
	return true
}

// pruneCandidates drops the provably routing-invariant candidates from
// cands (and keeps s.candArcs aligned), counting what it discarded. The
// filter consumes no randomness and touches no evaluator or pending state,
// so the surviving trajectory is identical to the unpruned one.
func (s *dtrSearch) pruneCandidates(cands []spf.Weights, plan *spf.Plan, w spf.Weights) []spf.Weights {
	if !s.pruneOn() || len(cands) == 0 {
		return cands
	}
	csr := s.e.Graph().CSR()
	kept := cands[:0]
	keptArcs := s.candArcs[:0]
	for i, cw := range cands {
		if arcsInvariant(plan, csr, w, cw, s.candArcs[i][:]) {
			s.stepPruned++
			continue
		}
		kept = append(kept, cw)
		keptArcs = append(keptArcs, s.candArcs[i])
	}
	s.candArcs = keptArcs
	if n := len(cands) - len(kept); n > 0 {
		s.pruned += int64(n)
		searchMet.candPruned.Add(int64(n))
		if gen := searchMet.candGenerated.Value(); gen > 0 {
			searchMet.pruneRate.Set(float64(searchMet.candPruned.Value()) / float64(gen))
		}
	}
	return kept
}
