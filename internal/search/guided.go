package search

import (
	"sort"

	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

// Link-guided candidate generation: a guided step ranks arcs by the
// incumbent's arc attribution (per-arc ΦH / SLA violation mass for FindH,
// per-arc ΦL for FindL) instead of the current static cost ordering, then
// runs the paper's heavy-tail rank sampler over that ordering unchanged:
// weights rise on the arcs actually carrying the objective and fall on the
// arcs carrying none of it. Params.Guide sets the per-step probability of a
// guided step, keeping the blind cost ordering as the exploration floor.
//
// Only the ordering changes — guided steps draw the same k1/k2 ranks and
// build candidates through the same pairing and clamping rules as blind
// steps (buildNeighbors/neighborOf), so every guided candidate is a legal
// Algorithm 2 move (pinned by TestGuidedCandidatesAreLegalMoves) and the
// sampler keeps proposing fresh pairs between accepts. (An earlier design
// that pinned k1 = k2 = 1 on guided steps re-proposed the same extreme pairs
// until the next accept and measurably degraded solution quality on large
// load-based instances.)
//
// With Guide == 0 no extra randomness is consumed, so the search trajectory
// is bitwise-identical to the unguided implementation.

// useGuided draws the per-step guidance decision. The draw happens only when
// guidance is enabled, keeping the Guide == 0 rng stream untouched.
func (s *dtrSearch) useGuided() bool {
	if s.p.Guide <= 0 {
		return false
	}
	return s.rng.Float64() < s.p.Guide
}

// ensureAttr refreshes the cached arc attribution of the incumbent. The
// cache is invalidated whenever the incumbent solution moves (accepts,
// diversification refreshes); s.e's plans are anchored at the incumbent at
// those points, which is the Attribute contract.
func (s *dtrSearch) ensureAttr() {
	if !s.attrFresh {
		s.e.Attribute(s.cur, &s.attr)
		s.attrFresh = true
	}
}

// sortLinksGuided fills s.order with all arcs by decreasing attribution
// score, ties broken by ascending arc ID (stable sort over the identity
// ordering) — fully deterministic.
func (s *dtrSearch) sortLinksGuided(score []float64) {
	for i := range s.order {
		s.order[i] = graph.EdgeID(i)
	}
	sort.SliceStable(s.order, func(i, j int) bool {
		return score[s.order[i]] > score[s.order[j]]
	})
}

// Portfolio start-weight builders (see portfolio.go).

// invCapWeights maps each arc's capacity to a weight in [1, wMax] with
// weight proportional to inverse capacity (the classic OSPF InvCap
// heuristic): the fattest arc gets the smallest weight.
func invCapWeights(caps []float64, wMax int) spf.Weights {
	w := make(spf.Weights, len(caps))
	minCap := caps[0]
	for _, c := range caps {
		if c < minCap {
			minCap = c
		}
	}
	for i, c := range caps {
		w[i] = 1 + int(float64(wMax-1)*(minCap/c)+0.5)
		if w[i] > wMax {
			w[i] = wMax
		}
	}
	return w
}

// scoreWeights maps attribution scores to weights in [1, wMax]: the highest
// scored (most costly) arc gets the largest weight, pushing traffic off it.
// A flat score vector degrades to uniform weights.
func scoreWeights(score []float64, wMax int) spf.Weights {
	w := make(spf.Weights, len(score))
	max := 0.0
	for _, v := range score {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return spf.Uniform(len(score))
	}
	for i, v := range score {
		w[i] = 1 + int(float64(wMax-1)*(v/max)+0.5)
		if w[i] > wMax {
			w[i] = wMax
		}
	}
	return w
}
