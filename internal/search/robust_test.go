package search

import (
	"reflect"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/resilience"
)

// robustParams attaches a small sampled single-link failure set to the tiny
// search budget.
func robustParams(t *testing.T, e *eval.Evaluator) Params {
	t.Helper()
	states, err := resilience.Enumerate(e.Graph(), resilience.Model{
		Kind: resilience.KindLink, Sample: 6, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := tinyParams()
	p.N = 60
	p.K = 40
	p.Robust = RobustParams{States: states, Alpha: 0.5, Beta: 0.5}
	return p
}

// TestRobustDTRDeterministicAcrossWorkers is the acceptance contract: a
// seeded robust search must produce bitwise-identical weights, objectives
// and robust scores at any worker count.
func TestRobustDTRDeterministicAcrossWorkers(t *testing.T) {
	e := randomEvaluator(t, eval.LoadBased, 41)
	var results []*DTRResult
	for _, workers := range []int{1, 4, 1} {
		p := robustParams(t, e)
		p.Workers = workers
		r, err := DTR(e, p)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	for i, r := range results[1:] {
		if !reflect.DeepEqual(results[0].WH, r.WH) || !reflect.DeepEqual(results[0].WL, r.WL) {
			t.Fatalf("run %d: weights differ from workers=1 run", i+1)
		}
		if results[0].Best != r.Best {
			t.Fatalf("run %d: objective %+v != %+v", i+1, r.Best, results[0].Best)
		}
		if !reflect.DeepEqual(results[0].Robust, r.Robust) {
			t.Fatalf("run %d: robust score %+v != %+v", i+1, r.Robust, results[0].Robust)
		}
	}
}

// TestRobustScoreReported checks the robust result surface: the score is
// present exactly when robust scoring is on, internally consistent, and its
// composite matches the search's secondary objective.
func TestRobustScoreReported(t *testing.T) {
	e := randomEvaluator(t, eval.LoadBased, 43)
	p := robustParams(t, e)
	r, err := DTR(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Robust == nil {
		t.Fatal("robust search reported no robust score")
	}
	rb := r.Robust
	if rb.States < 1 || rb.States > 6 {
		t.Fatalf("states = %d, want (0,6]", rb.States)
	}
	if rb.MeanPhiL <= 0 || rb.WorstPhiL < rb.MeanPhiL {
		t.Fatalf("inconsistent failure ΦL: mean %g, worst %g", rb.MeanPhiL, rb.WorstPhiL)
	}
	if rb.WorstState == "" {
		t.Fatal("no worst-state label")
	}
	if want := r.Result.PhiL + 0.5*rb.MeanPhiL + 0.5*rb.WorstPhiL; rb.Composite != want {
		t.Fatalf("composite = %g, want %g", rb.Composite, want)
	}

	// A nominal run of the same instance reports no robust score.
	nominal, err := DTR(e, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if nominal.Robust != nil {
		t.Fatal("nominal search reported a robust score")
	}
}

// TestRobustValidation covers the new parameter checks.
func TestRobustValidation(t *testing.T) {
	states := []resilience.State{{Label: "x", Arcs: nil}}
	p := tinyParams()
	p.Robust = RobustParams{States: states, Alpha: -1}
	if err := p.Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	p.Robust = RobustParams{States: states}
	if err := p.Validate(); err == nil {
		t.Error("robust states with zero weights accepted")
	}
	p.Robust = RobustParams{States: states, Alpha: 1}
	if err := p.Validate(); err != nil {
		t.Errorf("valid robust params rejected: %v", err)
	}
}
