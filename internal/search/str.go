package search

import (
	"fmt"
	"sync"

	"dualtopo/internal/cost"
	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

// RelaxedRecord is the best low-priority cost observed under the ε-relaxed
// precedence rule of §5.3.1: among all weight settings visited whose ΦH was
// within (1+ε) of the running optimum Φ*H, the one with the lowest ΦL.
type RelaxedRecord struct {
	W          spf.Weights
	PhiH, PhiL float64
	// Found is false when no visited setting satisfied the constraint (only
	// possible with an empty search budget).
	Found bool
}

// STRResult is the outcome of the single-topology baseline search.
type STRResult struct {
	// W is the best single weight setting found.
	W spf.Weights
	// Result is the full evaluation of W.
	Result *eval.Result
	// Best is Result's lexicographic objective.
	Best cost.Lex
	// Relaxed maps each requested ε to its record.
	Relaxed map[float64]RelaxedRecord
	// Evaluations counts objective evaluations performed.
	Evaluations int64
}

// STR runs the Fortz–Thorup-style "single weight change" local search [2]
// under the paper's lexicographic objective, starting from unit weights.
// Every candidate evaluation also feeds the ε-relaxation records.
func STR(e *eval.Evaluator, p STRParams) (*STRResult, error) {
	return STRFrom(e, spf.Uniform(e.Graph().NumEdges()), p)
}

// STRFrom runs the STR search from the given initial weights. The input is
// not modified.
func STRFrom(e *eval.Evaluator, w0 spf.Weights, p STRParams) (*STRResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := w0.Validate(e.Graph()); err != nil {
		return nil, fmt.Errorf("search: initial W: %w", err)
	}
	s := &strSearch{
		e:       e,
		p:       p,
		rng:     newRNG(p.Seed),
		w:       w0.Clone(),
		relaxed: make(map[float64]RelaxedRecord, len(p.Epsilons)),
	}
	workers := p.workers()
	if workers > p.Candidates {
		workers = p.Candidates
	}
	e.ResetDelta() // a reused evaluator must not leak a prior run's router position
	s.pool = make([]*eval.Evaluator, workers)
	s.pool[0] = e
	for i := 1; i < workers; i++ {
		s.pool[i] = e.Clone()
	}
	s.pending = make([][]graph.EdgeID, workers)
	s.mergeBuf = make([][]graph.EdgeID, workers)

	s.parallelRouting(true)
	first, err := e.ObjectiveSTR(s.w)
	s.parallelRouting(false)
	if err != nil {
		return nil, err
	}
	s.evals++
	s.cur = first
	s.bestW = s.w.Clone()
	s.bestObj = first
	s.record(s.w, first)

	sinceImprove := 0
	for iter := 0; iter < p.Iterations; iter++ {
		improved, err := s.step()
		if err != nil {
			return nil, err
		}
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if sinceImprove >= p.M {
			s.noteChange(s.perturb())
			s.parallelRouting(true)
			obj, err := e.ObjectiveSTR(s.w)
			s.parallelRouting(false)
			if err != nil {
				return nil, err
			}
			s.evals++
			s.cur = obj
			s.record(s.w, obj)
			if obj.Lex.Less(s.bestObj.Lex) {
				copy(s.bestW, s.w)
				s.bestObj = obj
			}
			sinceImprove = 0
		}
	}

	s.parallelRouting(true)
	best, err := e.EvaluateSTR(s.bestW)
	s.parallelRouting(false)
	if err != nil {
		return nil, err
	}
	return &STRResult{
		W:           s.bestW,
		Result:      best,
		Best:        best.Objective(),
		Relaxed:     s.relaxed,
		Evaluations: s.evals,
	}, nil
}

type strSearch struct {
	e    *eval.Evaluator
	p    STRParams
	rng  *rng
	pool []*eval.Evaluator

	w   spf.Weights
	cur eval.STRObjective

	bestW   spf.Weights
	bestObj eval.STRObjective

	// pending[wk] lists arcs on which worker wk's incremental router may
	// differ from the incumbent w; see dtrSearch for the protocol.
	pending  [][]graph.EdgeID
	mergeBuf [][]graph.EdgeID

	relaxed map[float64]RelaxedRecord
	evals   int64
}

// parallelRouting toggles the parallel full-route on the primary evaluator;
// see dtrSearch.parallelRouting for the scoping rationale.
func (s *strSearch) parallelRouting(on bool) {
	if s.p.RouteWorkers != 1 {
		w := 1
		if on {
			w = s.p.RouteWorkers // 0 = block-aware auto
		}
		s.e.SetRouteWorkers(w)
	}
}

// noteChange records an incumbent move on the given arcs for every worker's
// delta bookkeeping.
func (s *strSearch) noteChange(arcs []graph.EdgeID) {
	if !s.p.FullEval {
		notePending(s.pending, arcs)
	}
}

// step samples Candidates single-weight changes, evaluates them, feeds the
// relaxation records, and moves to the best candidate if it improves the
// current solution. Reports whether the incumbent improved.
func (s *strSearch) step() (bool, error) {
	n := len(s.w)
	type candidate struct {
		arc       int
		newWeight int
	}
	cands := make([]candidate, 0, s.p.Candidates)
	for len(cands) < s.p.Candidates {
		arc := s.rng.IntN(n)
		nw := 1 + s.rng.IntN(s.p.WMax)
		if nw == s.w[arc] {
			continue
		}
		cands = append(cands, candidate{arc, nw})
	}

	objs := make([]eval.STRObjective, len(cands))
	errs := make([]error, len(cands))
	weights := make([]spf.Weights, len(cands))
	for i, c := range cands {
		weights[i] = s.w.Clone()
		weights[i][c.arc] = c.newWeight
	}
	// evalOne routes candidate i on worker wk: incrementally — the changed
	// set is the worker's stale arcs plus the candidate's single arc —
	// unless FullEval forces a from-scratch evaluation.
	evalOne := func(wk, i int) (eval.STRObjective, error) {
		if s.p.FullEval {
			return s.pool[wk].ObjectiveSTR(weights[i])
		}
		cand := [1]graph.EdgeID{graph.EdgeID(cands[i].arc)}
		changed := takePending(s.pending, s.mergeBuf, wk, cand[:])
		return s.pool[wk].ObjectiveSTRDelta(weights[i], changed)
	}
	workers := len(s.pool)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i := range cands {
			objs[i], errs[i] = evalOne(0, i)
		}
	} else {
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := wk; i < len(cands); i += workers {
					objs[i], errs[i] = evalOne(wk, i)
				}
			}(wk)
		}
		wg.Wait()
	}
	s.evals += int64(len(cands))
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}

	bestIdx := -1
	bestLex := s.cur.Lex
	for i, obj := range objs {
		s.record(weights[i], obj)
		if obj.Lex.Less(bestLex) {
			bestLex = obj.Lex
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return false, nil
	}
	copy(s.w, weights[bestIdx])
	s.noteChange([]graph.EdgeID{graph.EdgeID(cands[bestIdx].arc)})
	s.cur = objs[bestIdx]
	if s.p.VerifyDelta && !s.p.FullEval {
		full, err := s.e.ObjectiveSTR(s.w)
		if err != nil {
			return false, err
		}
		if full != s.cur {
			return false, fmt.Errorf("search: delta/full mismatch on STR accept: delta %+v, full %+v", s.cur, full)
		}
	}
	if s.cur.Lex.Less(s.bestObj.Lex) {
		copy(s.bestW, s.w)
		s.bestObj = s.cur
		return true, nil
	}
	return false, nil
}

// record feeds one evaluated setting into the ε-relaxation bookkeeping of
// §5.3.1: for each ε, keep the lowest-ΦL setting whose ΦH is within (1+ε)
// of the running optimum Φ*H(n). The rule is online, exactly as the paper
// describes: records are not re-filtered when Φ*H later improves. It covers
// every evaluated candidate (a superset of the visited-solution sequence).
//
// ε-relaxation is a load-based concept; for SLA-based runs the analogous
// relaxation is a looser delay bound, applied at the evaluator (§5.3.2).
func (s *strSearch) record(w spf.Weights, obj eval.STRObjective) {
	if len(s.p.Epsilons) == 0 || s.e.Options().Kind != eval.LoadBased {
		return
	}
	// Φ*H(n): the lowest ΦH seen so far, including this candidate. For
	// load-based runs the lexicographic primary is ΦH itself.
	bestPhiH := s.bestObj.PhiH
	if s.cur.PhiH < bestPhiH {
		bestPhiH = s.cur.PhiH
	}
	if obj.PhiH < bestPhiH {
		bestPhiH = obj.PhiH
	}
	for _, epsilon := range s.p.Epsilons {
		if obj.PhiH > (1+epsilon)*bestPhiH {
			continue
		}
		rec, ok := s.relaxed[epsilon]
		if !ok || !rec.Found || obj.PhiL < rec.PhiL {
			s.relaxed[epsilon] = RelaxedRecord{
				W:     w.Clone(),
				PhiH:  obj.PhiH,
				PhiL:  obj.PhiL,
				Found: true,
			}
		}
	}
}

// perturb re-randomizes a Perturb fraction (at least one) of the weights,
// returning the changed arcs for the delta bookkeeping.
func (s *strSearch) perturb() []graph.EdgeID {
	count := int(s.p.Perturb*float64(len(s.w)) + 0.5)
	if count < 1 {
		count = 1
	}
	perm := s.rng.Perm(len(s.w))[:count]
	arcs := make([]graph.EdgeID, 0, count)
	for _, i := range perm {
		s.w[i] = 1 + s.rng.IntN(s.p.WMax)
		arcs = append(arcs, graph.EdgeID(i))
	}
	return arcs
}
