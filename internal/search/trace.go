package search

import (
	"encoding/json"
	"io"
	"sync"

	"dualtopo/internal/obs"
)

// TraceEvent is one step of a search trajectory: which routine and
// iteration ran, what kind of move was tried, whether it was accepted into
// the incumbent and whether it improved the best-known solution, the
// incumbent objective after the step, and the cumulative delta-vs-full
// evaluation split. Every field is a deterministic function of the search
// inputs — the same spec and seed produce an identical event stream at any
// Workers or RouteWorkers setting — so traces diff cleanly across runs.
type TraceEvent struct {
	// Trajectory identifies which portfolio trajectory emitted the event;
	// 0 for a plain (single-trajectory) search.
	Trajectory int `json:"trajectory"`
	// Routine is Algorithm 1's phase: 1 (FindH), 2 (FindL), 3 (refine).
	Routine int `json:"routine"`
	// Iter is the zero-based iteration within the routine.
	Iter int `json:"iter"`
	// Kind is the move type: "findH", "findL", "refine", or "perturb"
	// (diversification after M stale iterations).
	Kind string `json:"kind"`
	// Accepted reports whether the move replaced the incumbent weights.
	Accepted bool `json:"accepted"`
	// Improved reports whether the step produced a new best-known solution.
	Improved bool `json:"improved"`
	// Candidates is the number of neighbor settings evaluated this step.
	Candidates int `json:"candidates"`
	// Pruned is the number of generated neighbors discarded this step by the
	// routing-invariance bound before any evaluation.
	Pruned int `json:"pruned"`
	// PhiH and PhiL are the incumbent's class costs after the step.
	PhiH float64 `json:"phi_h"`
	PhiL float64 `json:"phi_l"`
	// BestPrimary and BestPhiL are the best-known lexicographic objective
	// after the step; Primary is ΦH for load-based searches, Λ for SLA.
	BestPrimary float64 `json:"best_primary"`
	BestPhiL    float64 `json:"best_phi_l"`
	// DeltaEvals and FullEvals split the cumulative evaluation count between
	// the incremental and from-scratch paths.
	DeltaEvals int64 `json:"delta_evals"`
	FullEvals  int64 `json:"full_evals"`
}

// TraceWriter emits TraceEvents as JSON lines. Encoding is deterministic
// (fixed field order, shortest float form), so a trace is byte-identical
// across runs of the same seeded search. Writes are serialized, so one
// TraceWriter can absorb a whole portfolio's concurrent trajectory streams
// (lines then interleave nondeterministically across trajectories; each
// trajectory's own subsequence stays deterministic).
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewTraceWriter returns a JSONL tracer over w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// OnEvent is the Params.OnEvent / PortfolioParams.OnEvent hook: it encodes
// the event, retaining the first write error.
func (t *TraceWriter) OnEvent(ev TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.enc.Encode(ev)
	}
}

// Err returns the first error encountered while writing the trace.
func (t *TraceWriter) Err() error { return t.err }

// Search-level telemetry, shared by every search in the process. Handles
// are pre-resolved so the per-iteration updates are pure atomic adds.
var searchMet = struct {
	iterFindH  *obs.Counter
	iterFindL  *obs.Counter
	iterRefine *obs.Counter
	accepts    *obs.Counter
	perturbs   *obs.Counter
	evalsDelta *obs.Counter
	evalsFull  *obs.Counter
	// Candidate pipeline accounting: every neighbor built, split by fate —
	// discarded by the routing-invariance bound or actually evaluated.
	candGenerated *obs.Counter
	candPruned    *obs.Counter
	candEvaluated *obs.Counter
	candGuided    *obs.Counter
	pruneRate     *obs.Gauge
}{
	iterFindH:  obs.Default().CounterVec("search_iterations_total", "DTR search iterations, by move kind.", "kind").With("findH"),
	iterFindL:  obs.Default().CounterVec("search_iterations_total", "DTR search iterations, by move kind.", "kind").With("findL"),
	iterRefine: obs.Default().CounterVec("search_iterations_total", "DTR search iterations, by move kind.", "kind").With("refine"),
	accepts:    obs.Default().Counter("search_accepts_total", "DTR search moves accepted into the incumbent."),
	perturbs:   obs.Default().Counter("search_perturbations_total", "DTR search diversification perturbations."),
	evalsDelta: obs.Default().CounterVec("search_evaluations_total", "Objective evaluations, by path.", "path").With("delta"),
	evalsFull:  obs.Default().CounterVec("search_evaluations_total", "Objective evaluations, by path.", "path").With("full"),

	candGenerated: obs.Default().CounterVec("search_candidates_total", "Neighbor candidates, by outcome.", "outcome").With("generated"),
	candPruned:    obs.Default().CounterVec("search_candidates_total", "Neighbor candidates, by outcome.", "outcome").With("pruned"),
	candEvaluated: obs.Default().CounterVec("search_candidates_total", "Neighbor candidates, by outcome.", "outcome").With("evaluated"),
	candGuided:    obs.Default().Counter("search_guided_steps_total", "Search steps that used guided (attribution-ranked) candidate generation."),
	pruneRate:     obs.Default().Gauge("search_prune_rate", "Fraction of generated candidates pruned by the routing-invariance bound (process lifetime)."),
}

// Portfolio-level telemetry (see portfolio.go).
var portfolioMet = struct {
	trajectories *obs.CounterVec
	bestPhiL     *obs.Gauge
}{
	trajectories: obs.Default().CounterVec("portfolio_trajectories_total", "Completed portfolio trajectories, by start strategy.", "strategy"),
	bestPhiL:     obs.Default().Gauge("portfolio_best_phi_l", "Best low-priority cost seen by any portfolio trajectory (running minimum)."),
}

// iterCounter maps a move kind to its pre-resolved iteration counter.
func iterCounter(kind string) *obs.Counter {
	switch kind {
	case "findH":
		return searchMet.iterFindH
	case "findL":
		return searchMet.iterFindL
	default:
		return searchMet.iterRefine
	}
}
