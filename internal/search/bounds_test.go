package search

import (
	"math/rand/v2"
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/graph"
	"dualtopo/internal/spf"
)

// TestPruneBoundSoundness is the randomized proof obligation behind
// pruneCandidates: whenever arcsInvariant certifies a two-arc weight change
// against trees anchored at the incumbent, a full evaluation of the changed
// weights must produce an objective bitwise-equal to the incumbent's — so a
// pruned candidate can never be one the search would have accepted (accepts
// require strict improvement).
func TestPruneBoundSoundness(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			invariantSeen, changedSeen := 0, 0
			for _, seed := range []uint64{3, 7, 19, 41} {
				e := randomEvaluator(t, kind, seed)
				g := e.Graph()
				n := g.NumEdges()
				csr := g.CSR()
				rng := rand.New(rand.NewPCG(seed, 0xb0d))
				const wMax, step = 20, 3

				w := make(spf.Weights, n)
				for i := range w {
					w[i] = 1 + rng.IntN(wMax)
				}
				// Anchor e's planH/planL at w and take the incumbent loads.
				r, err := e.EvaluateDTR(w, w)
				if err != nil {
					t.Fatal(err)
				}
				lLoads := append([]float64(nil), r.LLoads...)
				residual := append([]float64(nil), r.Residual...)
				base, err := e.Clone().ObjectiveH(w, lLoads)
				if err != nil {
					t.Fatal(err)
				}
				baseL, err := e.Clone().ObjectiveL(w, residual)
				if err != nil {
					t.Fatal(err)
				}

				for trial := 0; trial < 120; trial++ {
					up := graph.EdgeID(rng.IntN(n))
					down := graph.EdgeID(rng.IntN(n))
					cw, changed := neighborOf(w, up, down, 1+rng.IntN(step), wMax)
					if !changed {
						continue
					}
					arcs := []graph.EdgeID{up, down}
					invH := arcsInvariant(e.HPlan(), csr, w, cw, arcs)
					invL := arcsInvariant(e.LPlan(), csr, w, cw, arcs)
					if !invH && !invL {
						continue
					}
					ec := e.Clone()
					if invH {
						invariantSeen++
						got, err := ec.ObjectiveH(cw, lLoads)
						if err != nil {
							t.Fatal(err)
						}
						if got != base {
							t.Fatalf("seed %d trial %d: arcs (%d,%d) certified H-invariant but ObjectiveH moved: %+v vs %+v",
								seed, trial, up, down, got, base)
						}
					}
					if invL {
						got, err := ec.ObjectiveL(cw, residual)
						if err != nil {
							t.Fatal(err)
						}
						if got != baseL {
							t.Fatalf("seed %d trial %d: arcs (%d,%d) certified L-invariant but ObjectiveL moved: %g vs %g",
								seed, trial, up, down, got, baseL)
						}
					}
					changedSeen++
				}
			}
			if invariantSeen == 0 {
				t.Fatalf("property never exercised: no invariant candidates across %d checked moves", changedSeen)
			}
		})
	}
}

// TestPruneTransparency pins the other half of the prune contract: with the
// same seed, the pruned search must walk the identical trajectory as the
// unpruned one — same best objective, same final weights, same evaluation
// count bookkeeping difference coming only from skipped invariant candidates.
func TestPruneTransparency(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			p := tinyParams()
			off, err := DTR(randomEvaluator(t, kind, 37), p)
			if err != nil {
				t.Fatal(err)
			}
			pOn := p
			pOn.Prune = true
			on, err := DTR(randomEvaluator(t, kind, 37), pOn)
			if err != nil {
				t.Fatal(err)
			}
			if on.Best != off.Best {
				t.Fatalf("prune changed the best objective: %+v vs %+v", on.Best, off.Best)
			}
			for i := range on.WH {
				if on.WH[i] != off.WH[i] || on.WL[i] != off.WL[i] {
					t.Fatalf("prune changed the final weights at arc %d", i)
				}
			}
			if off.Pruned != 0 {
				t.Fatalf("unpruned run reports %d pruned candidates", off.Pruned)
			}
			if on.Pruned == 0 {
				t.Fatal("pruned run never pruned — the bound is not firing on this instance")
			}
			if on.DeltaEvals >= off.DeltaEvals {
				t.Fatalf("prune did not reduce delta evaluations: %d (on) vs %d (off)", on.DeltaEvals, off.DeltaEvals)
			}
			if on.DeltaEvals+on.Pruned != off.DeltaEvals {
				t.Fatalf("evaluation accounting broken: %d evaluated + %d pruned != %d unpruned evals",
					on.DeltaEvals, on.Pruned, off.DeltaEvals)
			}
		})
	}
}

// TestPruneDisabledUnderRobust: failure-aware scoring re-routes every
// candidate under each failure state, where intact-topology invariance proves
// nothing — the prune must silently stand down.
func TestPruneDisabledUnderRobust(t *testing.T) {
	e := randomEvaluator(t, eval.LoadBased, 31)
	p := robustParams(t, e)
	p.Prune = true
	r, err := DTR(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pruned != 0 {
		t.Fatalf("robust search pruned %d candidates; the bound must be disabled under Robust", r.Pruned)
	}
}
