package search

import (
	"math/rand/v2"

	"dualtopo/internal/graph"
)

// rng wraps math/rand/v2 with the small helpers the searches need.
type rng struct {
	*rand.Rand
}

func newRNG(seed uint64) *rng {
	return &rng{rand.New(rand.NewPCG(seed, 0x64756c746f706f))} // "dultopo"
}

// shuffleEdges permutes a slice of edge IDs in place.
func (r *rng) shuffleEdges(s []graph.EdgeID) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
