package search

import (
	"testing"

	"dualtopo/internal/eval"
	"dualtopo/internal/spf"
)

// TestDTRDeltaMatchesFullEval runs the same seeded DTR search with
// incremental candidate evaluation (default) and with FullEval forced, and
// requires identical trajectories: same best weights, same objective, same
// evaluation count. This is the end-to-end statement that the delta paths
// are bitwise-transparent to the heuristic.
func TestDTRDeltaMatchesFullEval(t *testing.T) {
	variants := []struct {
		name  string
		guide float64
		prune bool
	}{
		{name: "plain"},
		// Guided + pruned steps must also be mode-transparent: the prune and
		// the attribution consult s.e's incumbent-anchored trees, which
		// newDTRSearch keeps identical between delta and full mode.
		{name: "guided_pruned", guide: 0.7, prune: true},
	}
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		for _, v := range variants {
			t.Run(kind.String()+"/"+v.name, func(t *testing.T) {
				p := tinyParams()
				p.VerifyDelta = true // assert delta == full on every accept too
				p.Guide = v.guide
				p.Prune = v.prune

				delta, err := DTR(randomEvaluator(t, kind, 11), p)
				if err != nil {
					t.Fatal(err)
				}

				pf := p
				pf.FullEval = true
				pf.VerifyDelta = false
				full, err := DTR(randomEvaluator(t, kind, 11), pf)
				if err != nil {
					t.Fatal(err)
				}

				if delta.Best != full.Best {
					t.Fatalf("best objective: delta %+v, full %+v", delta.Best, full.Best)
				}
				if delta.Evaluations != full.Evaluations {
					t.Fatalf("evaluations: delta %d, full %d", delta.Evaluations, full.Evaluations)
				}
				if delta.Pruned != full.Pruned {
					t.Fatalf("pruned candidates: delta %d, full %d", delta.Pruned, full.Pruned)
				}
				for i := range delta.WH {
					if delta.WH[i] != full.WH[i] || delta.WL[i] != full.WL[i] {
						t.Fatalf("weight divergence at arc %d: delta (%d,%d), full (%d,%d)",
							i, delta.WH[i], delta.WL[i], full.WH[i], full.WL[i])
					}
				}
			})
		}
	}
}

// TestSTRDeltaMatchesFullEval is the single-topology twin.
func TestSTRDeltaMatchesFullEval(t *testing.T) {
	for _, kind := range []eval.Kind{eval.LoadBased, eval.SLABased} {
		t.Run(kind.String(), func(t *testing.T) {
			p := tinySTRParams()
			p.VerifyDelta = true

			delta, err := STR(randomEvaluator(t, kind, 13), p)
			if err != nil {
				t.Fatal(err)
			}

			pf := p
			pf.FullEval = true
			pf.VerifyDelta = false
			full, err := STR(randomEvaluator(t, kind, 13), pf)
			if err != nil {
				t.Fatal(err)
			}

			if delta.Best != full.Best {
				t.Fatalf("best objective: delta %+v, full %+v", delta.Best, full.Best)
			}
			if delta.Evaluations != full.Evaluations {
				t.Fatalf("evaluations: delta %d, full %d", delta.Evaluations, full.Evaluations)
			}
			for i := range delta.W {
				if delta.W[i] != full.W[i] {
					t.Fatalf("weight divergence at arc %d: delta %d, full %d", i, delta.W[i], full.W[i])
				}
			}
			for eps, rec := range delta.Relaxed {
				fr := full.Relaxed[eps]
				if rec.Found != fr.Found || rec.PhiH != fr.PhiH || rec.PhiL != fr.PhiL {
					t.Fatalf("relaxed record ε=%g: delta %+v, full %+v", eps, rec, fr)
				}
			}
		})
	}
}

// TestDTRDeltaParallelWorkersDeterministic re-runs the delta search with
// multiple workers and requires the single-worker trajectory. Worker delta
// routers hold independent incremental state, so this exercises the pending
// resync protocol under real scheduling races (and under -race in CI).
func TestDTRDeltaParallelWorkersDeterministic(t *testing.T) {
	p := tinyParams()
	p.VerifyDelta = true
	single, err := DTR(randomEvaluator(t, eval.LoadBased, 17), p)
	if err != nil {
		t.Fatal(err)
	}
	p4 := p
	p4.Workers = 4
	multi, err := DTR(randomEvaluator(t, eval.LoadBased, 17), p4)
	if err != nil {
		t.Fatal(err)
	}
	if single.Best != multi.Best {
		t.Fatalf("best objective: 1 worker %+v, 4 workers %+v", single.Best, multi.Best)
	}
	for i := range single.WH {
		if single.WH[i] != multi.WH[i] || single.WL[i] != multi.WL[i] {
			t.Fatalf("weight divergence at arc %d", i)
		}
	}
}

// TestSearchesReproducibleOnReusedEvaluator pins the ResetDelta contract:
// running the same seeded search twice on one Evaluator must reproduce the
// first run exactly. Without the reset, the second run's delta routers
// start at the first run's final position while the pending sets assume the
// incumbent — silently desynchronizing delta from full evaluation.
func TestSearchesReproducibleOnReusedEvaluator(t *testing.T) {
	e := randomEvaluator(t, eval.LoadBased, 11)
	n := e.Graph().NumEdges()
	p := tinyParams()
	p.VerifyDelta = true
	pp := PortfolioParams{
		Base:        p,
		Strategies:  DefaultPortfolio(3),
		Concurrency: 2,
	}
	var prevDTR *DTRResult
	var prevSTR *STRResult
	var prevPF *PortfolioResult
	for run := 0; run < 3; run++ {
		dr, err := DTR(e, p)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		sr, err := STR(e, tinySTRParams())
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		// The portfolio clones e per trajectory and never routes on e itself,
		// so interleaving it here must disturb neither its own reproducibility
		// nor the plain searches'.
		pf, err := Portfolio(e, spf.Uniform(n), spf.Uniform(n), pp)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if prevDTR != nil {
			if dr.Best != prevDTR.Best || sr.Best != prevSTR.Best {
				t.Fatalf("run %d: objective changed on reuse (DTR %+v vs %+v, STR %+v vs %+v)",
					run, dr.Best, prevDTR.Best, sr.Best, prevSTR.Best)
			}
			for i := range dr.WH {
				if dr.WH[i] != prevDTR.WH[i] || dr.WL[i] != prevDTR.WL[i] || sr.W[i] != prevSTR.W[i] {
					t.Fatalf("run %d: weights changed on reuse at arc %d", run, i)
				}
			}
			if pf.BestIndex != prevPF.BestIndex || pf.Best.Best != prevPF.Best.Best {
				t.Fatalf("run %d: portfolio changed on reuse (best %d %+v vs %d %+v)",
					run, pf.BestIndex, pf.Best.Best, prevPF.BestIndex, prevPF.Best.Best)
			}
			for ti := range pf.Trajectories {
				if pf.Trajectories[ti].Result.Best != prevPF.Trajectories[ti].Result.Best {
					t.Fatalf("run %d: trajectory %d changed on reuse", run, ti)
				}
			}
		}
		prevDTR, prevSTR, prevPF = dr, sr, pf
	}
}
