// Package search implements the paper's weight-setting heuristics: the DTR
// three-routine search of Algorithm 1 with the FindH/FindL neighborhoods of
// Algorithm 2 (§4), and the Fortz–Thorup "single weight change" local search
// used as the STR baseline, including the ε-relaxed record keeping of §5.3.
package search

import (
	"fmt"
	"runtime"

	"dualtopo/internal/resilience"
)

// RobustParams makes the DTR search failure-aware: every candidate is scored
// on a composite of its nominal objective and its low-priority cost across a
// fixed failure-state set, so the search trades a little intact-network ΦL
// for settings that degrade gracefully when links go down. The failure set
// is evaluated through the incremental sweep engine (disable → delta
// objective → repair), never by full re-evaluation.
type RobustParams struct {
	// States is the failure set every candidate is scored against; empty
	// disables robust scoring. Callers enumerate (and sample) it once via
	// resilience.Enumerate, so the set is seeded and fixed for the run.
	// States that disconnect the network are filtered out at search start —
	// reachability under a failure does not depend on the weights.
	States []resilience.State
	// Alpha and Beta weight the mean and worst-case failure ΦL added to a
	// candidate's nominal ΦL: score = ΦL + Alpha·mean + Beta·worst.
	Alpha, Beta float64
}

// enabled reports whether robust scoring is configured.
func (rp RobustParams) enabled() bool { return len(rp.States) > 0 }

// validate reports the first invalid robust field.
func (rp RobustParams) validate() error {
	if rp.Alpha < 0 || rp.Beta < 0 {
		return fmt.Errorf("search: negative robust weights (alpha=%g, beta=%g)", rp.Alpha, rp.Beta)
	}
	if rp.enabled() && rp.Alpha == 0 && rp.Beta == 0 {
		return fmt.Errorf("search: robust failure set given but alpha and beta are both 0")
	}
	return nil
}

// Params configures the DTR search (Algorithm 1). Zero values are invalid;
// start from Defaults and override.
type Params struct {
	// N bounds iterations of routines 1 and 2 (paper: 300 000).
	N int
	// K bounds iterations of routine 3, the refinement (paper: 800 000).
	K int
	// M is the diversification interval: with no incumbent improvement for
	// M iterations, weights are randomly perturbed (paper: 300).
	M int
	// Neighbors is m, the neighborhood size per iteration (paper: 5).
	Neighbors int
	// G1, G2, G3 are the fractions of weights perturbed when diversifying in
	// routines 1, 2 and 3 (paper: 5%, 5%, 3%).
	G1, G2, G3 float64
	// Tau is the heavy-tail exponent of the rank-selection distribution
	// P(k) ∝ k^−τ (paper: 1.5).
	Tau float64
	// WMax is the maximum link weight (paper: 30; minimum is always 1).
	WMax int
	// Step is the amount FindH/FindL add to or subtract from a weight when
	// constructing a neighbor.
	Step int
	// Seed makes the search deterministic.
	Seed uint64
	// Guide is the per-step probability in [0, 1] that FindH/FindL rank the
	// candidate neighborhood by the incumbent's arc attribution (arcs
	// ordered by their contribution to ΦH/Λ and ΦL) instead of the static
	// link-cost ordering. The paper's heavy-tail rank sampler then draws
	// from that ordering unchanged, so guided candidates remain legal
	// Algorithm 2 moves and fresh pairs keep appearing between accepts. 0
	// (the default) reproduces the paper's Algorithm 2 stream bitwise; 1
	// guides every step; values in between keep the blind ordering as the
	// exploration floor.
	Guide float64
	// Prune skips the delta evaluation of candidates whose changed arcs
	// provably leave every shortest-path DAG of the class being re-routed
	// intact: such a candidate's objective equals the incumbent's bitwise,
	// so it can never be strictly selected. The search trajectory (accepted
	// weights, best solution) is identical with pruning on or off; only the
	// evaluation count drops. Ignored while failure-aware (Robust) scoring
	// is active — identical intact routing does not imply identical failure
	// sweeps, because candidates re-route failure states under their own
	// weights.
	Prune bool
	// Workers bounds concurrent neighbor evaluations; 0 means GOMAXPROCS.
	Workers int
	// RouteWorkers bounds the SPF worker pool used for the search's full
	// solution refreshes (initialization, accepts after diversification, and
	// the final evaluation). 0 (the default) picks a block-aware value from
	// the instance size and GOMAXPROCS — sequential on small instances,
	// parallel on large ones; 1 forces sequential routing; n > 1 fixes the
	// pool size. Parallel routing is bitwise-identical to sequential, so the
	// search trajectory does not depend on this setting. Candidate
	// evaluations are unaffected: they already parallelize across Workers.
	RouteWorkers int
	// FullEval forces full re-evaluation of every candidate instead of the
	// incremental delta paths (default). Both modes produce bitwise-identical
	// search trajectories; full evaluation exists as a baseline for
	// benchmarks and debugging.
	FullEval bool
	// VerifyDelta asserts, on every accepted move, that the incremental
	// objective of the winning candidate equals the full re-evaluation
	// bitwise, failing the search on mismatch. Debug mode.
	VerifyDelta bool
	// Robust configures failure-aware candidate scoring; the zero value
	// keeps the search purely nominal.
	Robust RobustParams
	// OnEvent, when non-nil, receives one TraceEvent per search step —
	// iterations, accepts, diversification perturbations — from the search's
	// coordinating goroutine (never concurrently). The event stream is a
	// deterministic function of the search inputs: identical at any Workers
	// or RouteWorkers setting. Wrap a TraceWriter around a file to stream
	// the trajectory as JSONL.
	OnEvent func(TraceEvent)
}

// Defaults returns the paper's parameter settings (§5.1.3).
func Defaults() Params {
	return Params{
		N:         300000,
		K:         800000,
		M:         300,
		Neighbors: 5,
		G1:        0.05,
		G2:        0.05,
		G3:        0.03,
		Tau:       1.5,
		WMax:      30,
		Step:      1,
		Seed:      1,
		Workers:   0,
	}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	switch {
	case p.N < 0 || p.K < 0:
		return fmt.Errorf("search: negative iteration budget (N=%d, K=%d)", p.N, p.K)
	case p.M < 1:
		return fmt.Errorf("search: diversification interval M=%d < 1", p.M)
	case p.Neighbors < 1:
		return fmt.Errorf("search: neighborhood size m=%d < 1", p.Neighbors)
	case p.G1 < 0 || p.G1 > 1 || p.G2 < 0 || p.G2 > 1 || p.G3 < 0 || p.G3 > 1:
		return fmt.Errorf("search: perturbation fractions (%g,%g,%g) outside [0,1]", p.G1, p.G2, p.G3)
	case p.Tau < 0:
		return fmt.Errorf("search: tau=%g < 0", p.Tau)
	case p.WMax < 2:
		return fmt.Errorf("search: WMax=%d < 2", p.WMax)
	case p.Step < 1:
		return fmt.Errorf("search: step=%d < 1", p.Step)
	case p.Guide < 0 || p.Guide > 1:
		return fmt.Errorf("search: guide=%g outside [0,1]", p.Guide)
	case p.Workers < 0:
		return fmt.Errorf("search: workers=%d < 0", p.Workers)
	case p.RouteWorkers < 0:
		return fmt.Errorf("search: route workers=%d < 0", p.RouteWorkers)
	}
	return p.Robust.validate()
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// STRParams configures the STR baseline local search.
type STRParams struct {
	// Iterations bounds search iterations.
	Iterations int
	// Candidates is how many single-weight-change neighbors are sampled and
	// evaluated per iteration.
	Candidates int
	// M is the diversification interval, as in Params.
	M int
	// Perturb is the fraction of weights randomized when diversifying.
	Perturb float64
	// WMax is the maximum link weight.
	WMax int
	// Seed makes the search deterministic.
	Seed uint64
	// Epsilons lists the relaxation levels ε for which the search records
	// the best ΦL subject to ΦH ≤ (1+ε)·Φ*H (§5.3.1). May be empty.
	Epsilons []float64
	// Workers bounds concurrent candidate evaluations; 0 means GOMAXPROCS.
	Workers int
	// RouteWorkers bounds the SPF worker pool used for the search's full
	// evaluations (initialization, diversification refreshes, the final
	// evaluation); 0 = auto, 1 = sequential, see Params.RouteWorkers.
	RouteWorkers int
	// FullEval forces full candidate evaluation; see Params.FullEval.
	FullEval bool
	// VerifyDelta asserts delta == full on every accept; see
	// Params.VerifyDelta.
	VerifyDelta bool
}

// STRDefaults returns a baseline configuration whose evaluation budget
// (Iterations × Candidates) matches the DTR Defaults budget order.
func STRDefaults() STRParams {
	return STRParams{
		Iterations: 150000,
		Candidates: 10,
		M:          300,
		Perturb:    0.10,
		WMax:       30,
		Seed:       1,
		Epsilons:   []float64{0.05, 0.30},
	}
}

// Validate reports the first invalid field.
func (p STRParams) Validate() error {
	switch {
	case p.Iterations < 0:
		return fmt.Errorf("search: negative STR iterations %d", p.Iterations)
	case p.Candidates < 1:
		return fmt.Errorf("search: STR candidates %d < 1", p.Candidates)
	case p.M < 1:
		return fmt.Errorf("search: STR diversification interval M=%d < 1", p.M)
	case p.Perturb < 0 || p.Perturb > 1:
		return fmt.Errorf("search: STR perturbation %g outside [0,1]", p.Perturb)
	case p.WMax < 2:
		return fmt.Errorf("search: STR WMax=%d < 2", p.WMax)
	case p.Workers < 0:
		return fmt.Errorf("search: STR workers=%d < 0", p.Workers)
	case p.RouteWorkers < 0:
		return fmt.Errorf("search: STR route workers=%d < 0", p.RouteWorkers)
	}
	for _, e := range p.Epsilons {
		if e < 0 {
			return fmt.Errorf("search: negative epsilon %g", e)
		}
	}
	return nil
}

func (p STRParams) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}
